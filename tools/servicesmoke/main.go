// Command servicesmoke is the CI smoke check of the warpd daemon: it
// drives a running daemon through the typed Go client — readiness,
// benchmark discovery, one real job, and a resubmission that must be
// answered from the content-addressed cache. Process lifecycle
// (starting warpd, SIGTERM, asserting a clean exit) stays in the CI
// shell step; this tool only speaks the API.
//
// It also smokes a coordinator (warpd -coordinator), which serves the
// same API: -expect-healthy asserts the cluster topology settles on N
// healthy workers (e.g. after SIGTERMing one), -coalesce drives N
// concurrent identical submissions that must collapse onto one job,
// -expect-cached asserts the first submission is answered from a
// prior run's durable store, and -probe-only skips the job entirely.
//
// Usage:
//
//	servicesmoke -base http://127.0.0.1:PORT
//	servicesmoke -base http://127.0.0.1:PORT -coalesce 4
//	servicesmoke -base http://127.0.0.1:PORT -probe-only -expect-healthy 1
//	servicesmoke -base http://127.0.0.1:PORT -expect-cached
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"warped/client"
)

// options are the smoke scenario knobs; the zero value (plus a base
// URL) is the single-daemon happy path.
type options struct {
	base          string
	bench         string
	timeout       time.Duration
	expectHealthy int  // -1: skip the topology check
	coalesce      int  // extra concurrent identical submissions
	expectCached  bool // first submission must be a (store) cache hit
	probeOnly     bool // readiness + topology only, no job
}

func main() {
	var o options
	flag.StringVar(&o.base, "base", "", "daemon base URL (e.g. http://127.0.0.1:8080)")
	flag.StringVar(&o.bench, "bench", "Reduce", "benchmark to submit")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Minute, "overall deadline")
	flag.IntVar(&o.expectHealthy, "expect-healthy", -1, "wait until the cluster topology reports exactly this many healthy workers (-1 = skip)")
	flag.IntVar(&o.coalesce, "coalesce", 0, "submit this many extra concurrent identical jobs; all must coalesce onto one ID")
	flag.BoolVar(&o.expectCached, "expect-cached", false, "require the first submission to be answered from cache (prior run's store)")
	flag.BoolVar(&o.probeOnly, "probe-only", false, "only check readiness and topology, submit nothing")
	flag.Parse()
	if o.base == "" {
		fmt.Fprintln(os.Stderr, "servicesmoke: -base is required")
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "servicesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servicesmoke: ok")
}

func run(o options) error {
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	c := client.New(o.base)

	// The daemon may still be binding when CI reaches us: poll readiness.
	for {
		if ready, err := c.Ready(ctx); err == nil && ready {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("daemon never became ready: %w", ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}

	if o.expectHealthy >= 0 {
		if err := waitHealthy(ctx, o.base, o.expectHealthy); err != nil {
			return err
		}
	}
	if o.probeOnly {
		return nil
	}

	names, err := c.Benchmarks(ctx)
	if err != nil {
		return fmt.Errorf("benchmarks: %w", err)
	}
	if len(names) == 0 {
		return fmt.Errorf("benchmark list is empty")
	}

	spec := &client.JobSpec{Benchmark: o.bench}
	first, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	switch {
	case o.expectCached && !first.Cached:
		return fmt.Errorf("first submission of %s was not served from the store (%+v)", o.bench, first)
	case !o.expectCached && first.Cached:
		return fmt.Errorf("first submission of %s answered from cache (%+v): daemon is not fresh", o.bench, first)
	}

	// Concurrent identical submissions must all collapse onto the same
	// content address — through a coordinator, onto one dispatch.
	if o.coalesce > 0 {
		var wg sync.WaitGroup
		errs := make([]error, o.coalesce)
		for i := 0; i < o.coalesce; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := c.Submit(ctx, spec)
				if err != nil {
					errs[i] = fmt.Errorf("coalesce submit %d: %w", i, err)
					return
				}
				if r.ID != first.ID {
					errs[i] = fmt.Errorf("coalesce submit %d got ID %s, want %s", i, r.ID, first.ID)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	res, err := c.Wait(ctx, first.ID)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if res.Stats == nil || res.Stats.Cycles == 0 {
		return fmt.Errorf("job %s produced empty stats: %+v", first.ID, res)
	}

	// The whole point of the daemon: resubmitting identical work is a
	// cache hit with the same ID and no second execution.
	second, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if second.ID != first.ID {
		return fmt.Errorf("resubmission changed ID: %s then %s", first.ID, second.ID)
	}
	if !second.Cached {
		return fmt.Errorf("resubmission was not a cache hit: %+v", second)
	}
	fmt.Printf("servicesmoke: %s ran in %d cycles, resubmit hit cache (id %s)\n",
		o.bench, res.Stats.Cycles, first.ID)
	return nil
}

// topology is the slice of GET /v1/cluster this tool asserts on.
type topology struct {
	Workers []struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	} `json:"workers"`
	RingNodes int `json:"ring_nodes"`
}

// waitHealthy polls the coordinator's topology until exactly want
// workers are healthy — how CI asserts a SIGTERMed worker is ejected
// from the ring (and a recovered one readmitted) within the deadline.
func waitHealthy(ctx context.Context, base string, want int) error {
	var last string
	for {
		topo, err := fetchTopology(ctx, base)
		if err == nil {
			healthy := 0
			for _, w := range topo.Workers {
				if w.Healthy {
					healthy++
				}
			}
			if healthy == want && topo.RingNodes == want {
				fmt.Printf("servicesmoke: topology settled on %d healthy of %d workers\n",
					healthy, len(topo.Workers))
				return nil
			}
			last = fmt.Sprintf("%d healthy, ring_nodes %d", healthy, topo.RingNodes)
		} else {
			last = err.Error()
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("topology never settled on %d healthy workers (last: %s): %w",
				want, last, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func fetchTopology(ctx context.Context, base string) (*topology, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/cluster: %s (is -base a coordinator?)", resp.Status)
	}
	var topo topology
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		return nil, err
	}
	return &topo, nil
}
