// Command servicesmoke is the CI smoke check of the warpd daemon: it
// drives a running daemon through the typed Go client — readiness,
// benchmark discovery, one real job, and a resubmission that must be
// answered from the content-addressed cache. Process lifecycle
// (starting warpd, SIGTERM, asserting a clean exit) stays in the CI
// shell step; this tool only speaks the API.
//
// Usage:
//
//	servicesmoke -base http://127.0.0.1:PORT
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"warped/client"
)

func main() {
	base := flag.String("base", "", "daemon base URL (e.g. http://127.0.0.1:8080)")
	bench := flag.String("bench", "Reduce", "benchmark to submit")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "servicesmoke: -base is required")
		os.Exit(2)
	}
	if err := run(*base, *bench, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "servicesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servicesmoke: ok")
}

func run(base, bench string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c := client.New(base)

	// The daemon may still be binding when CI reaches us: poll readiness.
	for {
		if ready, err := c.Ready(ctx); err == nil && ready {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("daemon never became ready: %w", ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}

	names, err := c.Benchmarks(ctx)
	if err != nil {
		return fmt.Errorf("benchmarks: %w", err)
	}
	if len(names) == 0 {
		return fmt.Errorf("benchmark list is empty")
	}

	spec := &client.JobSpec{Benchmark: bench}
	first, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if first.Cached {
		return fmt.Errorf("first submission of %s answered from cache (%+v): daemon is not fresh", bench, first)
	}
	res, err := c.Wait(ctx, first.ID)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if res.Stats == nil || res.Stats.Cycles == 0 {
		return fmt.Errorf("job %s produced empty stats: %+v", first.ID, res)
	}

	// The whole point of the daemon: resubmitting identical work is a
	// cache hit with the same ID and no second execution.
	second, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if second.ID != first.ID {
		return fmt.Errorf("resubmission changed ID: %s then %s", first.ID, second.ID)
	}
	if !second.Cached {
		return fmt.Errorf("resubmission was not a cache hit: %+v", second)
	}
	fmt.Printf("servicesmoke: %s ran in %d cycles, resubmit hit cache (id %s)\n",
		bench, res.Stats.Cycles, first.ID)
	return nil
}
