// Command docscheck keeps the documentation honest in CI. It has three
// modes:
//
//	docscheck README.md docs/*.md         # check markdown links and code refs
//	docscheck -jsonl metrics.jsonl        # validate a JSON Lines file
//	docscheck -jobspecs docs/SERVICE.md   # validate documented job specs
//
// In markdown mode every inline link target that is not an external
// URL must resolve to an existing file or directory, relative to the
// markdown file that references it. Anchor fragments — both pure
// in-page "#section" links and "file.md#section" cross-references —
// must additionally match a heading in the target document, using the
// GitHub slug algorithm (lowercased, punctuation stripped, spaces to
// hyphens, "-N" suffixes on duplicates). Exit status is non-zero if
// any link is broken, with one diagnostic per offender.
//
// In -jsonl mode every non-empty line must parse as a JSON object —
// the shape the metrics Snapshot.WriteJSONL and the JSONL trace writer
// emit. Used by CI to assert that `warpsim -metrics-out` produced
// machine-readable output.
//
// In -jobspecs mode every fenced code block opened with "```json
// jobspec" must parse and canonicalize as a warpd job spec (the schema
// POST /v1/jobs enforces, including unknown-field rejection), so the
// examples in docs/SERVICE.md cannot drift from the daemon. A file
// with no tagged blocks fails: losing the tag must not silently skip
// the check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"

	"warped/internal/service"
)

// linkRE matches inline markdown links and images: [text](target).
// Reference-style links are rare in this repository and not checked.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	jsonl := flag.Bool("jsonl", false, "validate the arguments as JSON Lines files instead of markdown")
	jobspecs := flag.Bool("jobspecs", false, "validate ```json jobspec blocks in the arguments against the warpd job-spec schema")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: no files given")
		os.Exit(2)
	}

	bad := 0
	for _, path := range flag.Args() {
		var errs []string
		var err error
		switch {
		case *jsonl:
			errs, err = checkJSONL(path)
		case *jobspecs:
			errs, err = checkJobSpecs(path)
		default:
			errs, err = checkMarkdown(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", path, err)
			bad++
			continue
		}
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "docscheck: %s\n", e)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
}

// external reports whether a link target leaves the repository.
func external(target string) bool {
	for _, scheme := range []string{"http://", "https://", "mailto:", "chrome://"} {
		if strings.HasPrefix(target, scheme) {
			return true
		}
	}
	return false
}

// checkMarkdown returns one message per broken local link or dangling
// anchor in path.
func checkMarkdown(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var errs []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target, frag := m[1], ""
			if external(target) {
				continue
			}
			if j := strings.IndexByte(target, '#'); j >= 0 {
				target, frag = target[:j], target[j+1:]
			}
			doc := path // pure "#frag" links resolve against this file
			if target != "" {
				doc = filepath.Join(dir, target)
				if _, err := os.Stat(doc); err != nil {
					errs = append(errs, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
					continue
				}
			}
			if frag == "" || !strings.HasSuffix(doc, ".md") {
				continue
			}
			anchors, err := anchorsOf(doc)
			if err != nil {
				errs = append(errs, fmt.Sprintf("%s:%d: %v", path, i+1, err))
				continue
			}
			if !anchors[frag] {
				errs = append(errs, fmt.Sprintf("%s:%d: dangling anchor %q", path, i+1, m[1]))
			}
		}
	}
	return errs, nil
}

// anchorCache memoizes heading-anchor sets per markdown file, since
// several documents cross-link the same targets.
var anchorCache = map[string]map[string]bool{}

// anchorsOf returns the set of valid anchor slugs in the markdown file
// at path.
func anchorsOf(path string) (map[string]bool, error) {
	if a, ok := anchorCache[path]; ok {
		return a, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := headingAnchors(string(data))
	anchorCache[path] = a
	return a, nil
}

// headingAnchors slugs every ATX heading in a markdown document the
// way GitHub's renderer does: lowercase, keep only letters, digits,
// hyphens and underscores, spaces become hyphens, and repeated slugs
// get "-1", "-2", ... suffixes. Headings inside fenced code blocks
// are not anchors.
func headingAnchors(doc string) map[string]bool {
	anchors := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		hashes := len(trimmed) - len(strings.TrimLeft(trimmed, "#"))
		if hashes < 1 || hashes > 6 || !strings.HasPrefix(trimmed[hashes:], " ") {
			continue
		}
		slug := slugify(strings.TrimSpace(trimmed[hashes:]))
		if n := counts[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		counts[slug]++
	}
	return anchors
}

// headingLinkRE reduces an inline link in a heading to its text, which
// is what GitHub slugs.
var headingLinkRE = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`)

// slugify converts heading text to its GitHub anchor slug.
func slugify(text string) string {
	text = headingLinkRE.ReplaceAllString(text, "$1")
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// jobSpecBlocks extracts the fenced code blocks opened with
// "```json jobspec", returning (startLine, body) pairs.
func jobSpecBlocks(data string) [][2]string {
	var blocks [][2]string
	lines := strings.Split(data, "\n")
	for i := 0; i < len(lines); i++ {
		open := strings.TrimSpace(lines[i])
		if open != "```json jobspec" {
			continue
		}
		var body []string
		start := i + 2 // 1-indexed first body line
		for i++; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body = append(body, lines[i])
		}
		blocks = append(blocks, [2]string{fmt.Sprint(start), strings.Join(body, "\n")})
	}
	return blocks
}

// checkJobSpecs validates every tagged job-spec example in path
// against the daemon's own parser and canonicalizer: the exact checks
// POST /v1/jobs applies, unknown-field rejection included.
func checkJobSpecs(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	blocks := jobSpecBlocks(string(data))
	if len(blocks) == 0 {
		return []string{fmt.Sprintf("%s: no ```json jobspec blocks found", path)}, nil
	}
	var errs []string
	for _, b := range blocks {
		line, body := b[0], b[1]
		spec, err := service.ParseSpec([]byte(body))
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s:%s: %v", path, line, err))
			continue
		}
		if _, err := spec.Canonicalize(); err != nil {
			errs = append(errs, fmt.Sprintf("%s:%s: %v", path, line, err))
		}
	}
	return errs, nil
}

// checkJSONL returns one message per line of path that is not a JSON
// object; an empty file is an error (a metrics dump is never empty).
func checkJSONL(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var errs []string
	objects := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			errs = append(errs, fmt.Sprintf("%s:%d: not a JSON object: %v", path, i+1, err))
			continue
		}
		objects++
	}
	if objects == 0 && len(errs) == 0 {
		errs = append(errs, fmt.Sprintf("%s: no JSON objects found", path))
	}
	return errs, nil
}
