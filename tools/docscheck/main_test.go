package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckMarkdown(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "exists.md", "target")
	md := write(t, dir, "doc.md", `
[ok](exists.md) and [ok too](exists.md#section)
[external](https://example.com/x) [anchor](#here)
[broken](missing.md) ![img](missing.png)
`)
	errs, err := checkMarkdown(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 {
		t.Fatalf("want 2 broken links, got %d: %v", len(errs), errs)
	}
	for _, e := range errs {
		if !filepath.IsAbs(e) && e == "" {
			t.Errorf("empty diagnostic")
		}
	}
}

func TestCheckMarkdownRepoDocs(t *testing.T) {
	// The repository's own documentation must stay link-clean; this is
	// the in-process form of the CI docs job.
	files, err := filepath.Glob("../../docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, "../../README.md")
	for _, f := range files {
		errs, err := checkMarkdown(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, e := range errs {
			t.Errorf("%s", e)
		}
	}
}

func TestCheckJSONL(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.jsonl", `{"name":"a","value":1}`+"\n"+`{"name":"b","value":2}`+"\n")
	if errs, err := checkJSONL(good); err != nil || len(errs) != 0 {
		t.Fatalf("good file flagged: errs=%v err=%v", errs, err)
	}
	bad := write(t, dir, "bad.jsonl", "{\"ok\":true}\nnot json\n")
	if errs, err := checkJSONL(bad); err != nil || len(errs) != 1 {
		t.Fatalf("want 1 error, got errs=%v err=%v", errs, err)
	}
	empty := write(t, dir, "empty.jsonl", "\n")
	if errs, err := checkJSONL(empty); err != nil || len(errs) != 1 {
		t.Fatalf("empty file must be flagged, got errs=%v err=%v", errs, err)
	}
}
