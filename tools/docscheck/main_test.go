package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckMarkdown(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "exists.md", "# Title\n\n## Section\ntarget\n")
	md := write(t, dir, "doc.md", `# Here
[ok](exists.md) and [ok too](exists.md#section)
[external](https://example.com/x) [anchor](#here)
[broken](missing.md) ![img](missing.png)
[gone](exists.md#nope) [gone too](#nowhere)
`)
	errs, err := checkMarkdown(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 4 {
		t.Fatalf("want 2 broken links + 2 dangling anchors, got %d: %v", len(errs), errs)
	}
	for _, e := range errs {
		if !filepath.IsAbs(e) && e == "" {
			t.Errorf("empty diagnostic")
		}
	}
}

// TestHeadingAnchors: the GitHub slug rules the anchor check relies
// on — punctuation stripped, spaces to hyphens, duplicate suffixes,
// fenced code blocks skipped, heading links reduced to their text.
func TestHeadingAnchors(t *testing.T) {
	doc := "# Policy Contract!\n" +
		"## `warpsample:1/N` — sampling\n" +
		"## Repeat\n## Repeat\n" +
		"## See [the guide](x.md)\n" +
		"```\n# not a heading\n```\n" +
		"#nospace is not a heading\n"
	a := headingAnchors(doc)
	for _, want := range []string{
		"policy-contract",
		"warpsample1n--sampling",
		"repeat", "repeat-1",
		"see-the-guide",
	} {
		if !a[want] {
			t.Errorf("anchor %q missing from %v", want, a)
		}
	}
	if a["not-a-heading"] || a["nospace-is-not-a-heading"] {
		t.Errorf("non-headings slugged: %v", a)
	}
}

func TestCheckMarkdownRepoDocs(t *testing.T) {
	// The repository's own documentation must stay link-clean; this is
	// the in-process form of the CI docs job.
	files, err := filepath.Glob("../../docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, "../../README.md")
	for _, f := range files {
		errs, err := checkMarkdown(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, e := range errs {
			t.Errorf("%s", e)
		}
	}
}

// TestJobSpecBlocksExtraction: only blocks tagged "json jobspec" are
// extracted; plain json blocks are ignored.
func TestJobSpecBlocksExtraction(t *testing.T) {
	doc := "pre\n```json jobspec\n{\"benchmark\": \"MatrixMul\"}\n```\n" +
		"```json\n{\"not\": \"a jobspec\"}\n```\n" +
		"```json jobspec\n{\n  \"benchmark\": \"BitonicSort\"\n}\n```\n"
	blocks := jobSpecBlocks(doc)
	if len(blocks) != 2 {
		t.Fatalf("extracted %d blocks, want 2: %v", len(blocks), blocks)
	}
}

// TestCheckJobSpecsValid: well-formed examples pass against the
// daemon's own parser.
func TestCheckJobSpecsValid(t *testing.T) {
	path := write(t, t.TempDir(), "doc.md",
		"```json jobspec\n{\"benchmark\": \"MatrixMul\", \"retry\": 3}\n```\n")
	errs, err := checkJobSpecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Errorf("errors on a valid spec: %v", errs)
	}
}

// TestCheckJobSpecsCatches: schema drift fails — unknown fields,
// invalid values, and a document that lost its tagged blocks.
func TestCheckJobSpecsCatches(t *testing.T) {
	cases := map[string]string{
		"unknown field": "```json jobspec\n{\"benchmark\": \"MatrixMul\", \"retries\": 3}\n```\n",
		"bad benchmark": "```json jobspec\n{\"benchmark\": \"NotABenchmark\"}\n```\n",
		"bad config":    "```json jobspec\n{\"benchmark\": \"MatrixMul\", \"config\": {\"dmr\": \"sideways\"}}\n```\n",
		"no blocks":     "just prose, no tagged examples\n",
	}
	for name, doc := range cases {
		errs, err := checkJobSpecs(write(t, t.TempDir(), "doc.md", doc))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(errs) == 0 {
			t.Errorf("%s: no errors reported", name)
		}
	}
}

// TestCheckJobSpecsRepoDocs: the documented examples in docs/SERVICE.md
// and docs/POLICIES.md must validate — the in-process form of the CI
// docs job.
func TestCheckJobSpecsRepoDocs(t *testing.T) {
	for _, doc := range []string{"../../docs/SERVICE.md", "../../docs/POLICIES.md"} {
		errs, err := checkJobSpecs(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range errs {
			t.Errorf("%s", e)
		}
	}
}

func TestCheckJSONL(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.jsonl", `{"name":"a","value":1}`+"\n"+`{"name":"b","value":2}`+"\n")
	if errs, err := checkJSONL(good); err != nil || len(errs) != 0 {
		t.Fatalf("good file flagged: errs=%v err=%v", errs, err)
	}
	bad := write(t, dir, "bad.jsonl", "{\"ok\":true}\nnot json\n")
	if errs, err := checkJSONL(bad); err != nil || len(errs) != 1 {
		t.Fatalf("want 1 error, got errs=%v err=%v", errs, err)
	}
	empty := write(t, dir, "empty.jsonl", "\n")
	if errs, err := checkJSONL(empty); err != nil || len(errs) != 1 {
		t.Fatalf("empty file must be flagged, got errs=%v err=%v", errs, err)
	}
}
