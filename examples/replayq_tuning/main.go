// ReplayQ tuning: sweep the ReplayQ capacity on a compute-saturated
// workload and print the overhead curve plus the hardware cost of each
// point — the trade-off behind the paper's choice of 10 entries (~5 KB,
// about 4% of the register file).
package main

import (
	"context"
	"fmt"
	"log"

	"warped"
	"warped/internal/core"
)

func main() {
	const bench = "MatrixMul" // the workload with the worst inter-warp pressure

	runner := &warped.Runner{}
	base, err := runner.Run(context.Background(), bench, warped.WithConfig(warped.PaperConfig()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s without DMR: %d cycles\n\n", bench, base.Cycles)
	fmt.Printf("%7s  %9s  %9s  %11s  %10s  %9s\n",
		"entries", "cycles", "overhead", "full stalls", "RAW stalls", "SRAM cost")

	for _, q := range []int{0, 1, 2, 5, 10, 20} {
		cfg := warped.WarpedDMRConfig()
		cfg.ReplayQSize = q
		res, err := runner.Run(context.Background(), bench, warped.WithConfig(cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %9d  %8.1f%%  %11d  %10d  %8.1fKB\n",
			q, res.Cycles,
			100*(float64(res.Cycles)/float64(base.Cycles)-1),
			res.StallReplayQFull, res.StallRAWUnverif,
			float64(q*core.ReplayQEntryBytes)/1024)
	}
	fmt.Printf("\n(one entry holds 3 source operands + the original result for all")
	fmt.Printf("\n 32 lanes plus the opcode: %d bytes)\n", core.ReplayQEntryBytes)
}
