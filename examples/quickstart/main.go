// Quickstart: run one paper workload on the simulated GPU with full
// Warped-DMR and print what the technique delivers — error coverage —
// and what it costs — extra cycles relative to the unprotected run.
package main

import (
	"fmt"
	"log"

	"warped"
)

func main() {
	// The machine of the paper's Table 3, first without protection...
	base := warped.PaperConfig()
	plain, err := warped.RunBenchmark("MatrixMul", base)
	if err != nil {
		log.Fatal(err)
	}

	// ...then with full Warped-DMR: intra-warp spatial redundancy on
	// idle SIMT lanes plus inter-warp temporal redundancy through the
	// ReplayQ, with round-robin thread-to-cluster mapping.
	protected, err := warped.RunBenchmark("MatrixMul", warped.WarpedDMRConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MatrixMul on a %d-SM GPU (outputs validated both runs)\n\n", base.NumSMs)
	fmt.Printf("                 unprotected    Warped-DMR\n")
	fmt.Printf("kernel cycles    %-14d %d\n", plain.Cycles, protected.Cycles)
	fmt.Printf("error coverage   %-14s %.2f%%\n", "0%", 100*protected.Coverage())
	fmt.Printf("overhead         %-14s %.1f%%\n", "-",
		100*(float64(protected.Cycles)/float64(plain.Cycles)-1))
	fmt.Printf("\nverified thread-instructions: %d intra-warp (spatial), %d inter-warp (temporal)\n",
		protected.VerifiedIntra, protected.VerifiedInter)
}
