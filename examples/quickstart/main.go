// Quickstart: run one paper workload on the simulated GPU with full
// Warped-DMR and print what the technique delivers — error coverage —
// and what it costs — extra cycles relative to the unprotected run.
package main

import (
	"context"
	"fmt"
	"log"

	"warped"
)

func main() {
	// The machine of the paper's Table 3, without protection and with
	// full Warped-DMR: intra-warp spatial redundancy on idle SIMT lanes
	// plus inter-warp temporal redundancy through the ReplayQ, with
	// round-robin thread-to-cluster mapping. Runner.Run is the single
	// entry point: the config is a functional option (the default is
	// WarpedDMRConfig) and the context can cancel a run mid-kernel.
	base := warped.PaperConfig()
	r := &warped.Runner{}
	plain, err := r.Run(context.Background(), "MatrixMul", warped.WithConfig(base))
	if err != nil {
		log.Fatal(err)
	}
	protected, err := r.Run(context.Background(), "MatrixMul")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MatrixMul on a %d-SM GPU (outputs validated both runs)\n\n", base.NumSMs)
	fmt.Printf("                 unprotected    Warped-DMR\n")
	fmt.Printf("kernel cycles    %-14d %d\n", plain.Cycles, protected.Cycles)
	fmt.Printf("error coverage   %-14s %.2f%%\n", "0%", 100*protected.Coverage())
	fmt.Printf("overhead         %-14s %.1f%%\n", "-",
		100*(float64(protected.Cycles)/float64(plain.Cycles)-1))
	fmt.Printf("\nverified thread-instructions: %d intra-warp (spatial), %d inter-warp (temporal)\n",
		protected.VerifiedIntra, protected.VerifiedInter)
}
