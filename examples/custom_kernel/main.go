// Custom kernel: write a SAXPY kernel in the simulator's PTX-like
// assembly, launch it on the simulated GPU, read back and check the
// result, and inspect how Warped-DMR covered it.
package main

import (
	"fmt"
	"log"
	"math"

	"warped"
)

// saxpy computes y[i] = a*x[i] + y[i] for i < n. The guard on n makes
// the tail warp partially utilized — intra-warp DMR territory.
const saxpy = `
.kernel saxpy
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x     ; i
	ld.param r3, [0]            ; n
	setp.ge.s32 p0, r2, r3
	@p0 exit
	ld.param r4, [4]            ; a (float bits)
	ld.param r5, [8]            ; x base
	ld.param r6, [12]           ; y base
	shl  r7, r2, 2
	iadd r8, r5, r7
	ld.global r9, [r8]          ; x[i]
	iadd r10, r6, r7
	ld.global r11, [r10]        ; y[i]
	ffma r12, r4, r9, r11
	st.global [r10], r12
	exit
`

func main() {
	prog, err := warped.Assemble(saxpy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Disassemble())

	cfg := warped.WarpedDMRConfig()
	gpu, err := warped.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const n = 1000 // deliberately not a multiple of the block size
	const a = float32(2.5)
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(n - i)
	}
	dx := gpu.Mem.MustAlloc(4 * n)
	dy := gpu.Mem.MustAlloc(4 * n)
	if err := gpu.Mem.WriteFloats(dx, x); err != nil {
		log.Fatal(err)
	}
	if err := gpu.Mem.WriteFloats(dy, y); err != nil {
		log.Fatal(err)
	}

	st, err := gpu.Launch(&warped.Kernel{
		Prog:  prog,
		GridX: 8, GridY: 1, BlockX: 128, BlockY: 1,
		Params: warped.NewParams(n, math.Float32bits(a), dx, dy),
	}, warped.LaunchOpts{})
	if err != nil {
		log.Fatal(err)
	}

	got, err := gpu.Mem.ReadFloats(dy, n)
	if err != nil {
		log.Fatal(err)
	}
	for i := range got {
		want := a*x[i] + y[i]
		if got[i] != want {
			log.Fatalf("y[%d] = %g, want %g", i, got[i], want)
		}
	}
	fmt.Printf("saxpy(%d) verified on the host: every element correct\n\n", n)
	fmt.Printf("cycles            %d\n", st.Cycles)
	fmt.Printf("warp instructions %d\n", st.WarpInstrs)
	fmt.Printf("DMR coverage      %.2f%%\n", 100*st.Coverage())
	fmt.Printf("  intra-warp      %d thread-instructions (tail-warp idle lanes)\n", st.VerifiedIntra)
	fmt.Printf("  inter-warp      %d thread-instructions (temporal replays)\n", st.VerifiedInter)
}
