// Fault injection: plant a stuck-at-1 defect in one SIMT lane's ALU
// and watch Warped-DMR's comparators flag the mismatches, then run the
// same fault without protection to show the silent corruption it would
// otherwise cause.
package main

import (
	"context"
	"fmt"

	"warped"
	"warped/internal/fault"
	"warped/internal/isa"
)

func main() {
	// A permanent stuck-at-1 on bit 7 of SM 0 / lane 5's SP output.
	mkFault := func() *warped.Fault {
		return &warped.Fault{
			Kind:     fault.StuckAt,
			SM:       0,
			Lane:     5,
			Unit:     isa.UnitSP,
			Bit:      7,
			StuckVal: 1,
		}
	}

	// --- With Warped-DMR: mismatches are detected. ---
	var first *warped.ErrorEvent
	events := 0
	runner := &warped.Runner{}
	res, err := runner.Run(context.Background(), "SCAN",
		warped.WithConfig(warped.WarpedDMRConfig()),
		warped.WithFaults(fault.NewInjector(mkFault()), func(ev warped.ErrorEvent) {
			if first == nil {
				f := ev
				first = &f
			}
			events++
		}))
	switch {
	case err != nil:
		// A corrupted value fed an address computation and ran off the
		// end of memory: a detectable unrecoverable error, not an SDC.
		fmt.Printf("protected run:   kernel aborted (DUE): %v\n", err)
		fmt.Printf("                 comparators flagged %d mismatches before the abort\n", events)
	default:
		fmt.Printf("protected run:   %d corruptions produced, %d flagged by DMR comparators\n",
			res.FaultsActivated, res.FaultsDetected)
	}
	if first != nil {
		fmt.Printf("first detection: pc=%d thread=%d origLane=%d verifLane=%d %08x != %08x (intra=%v)\n",
			first.PC, first.Thread, first.OrigLane, first.VerifLane,
			first.Original, first.Redundant, first.Intra)
	}

	// --- Without protection: the same fault corrupts silently. ---
	unprot, err := runner.Run(context.Background(), "SCAN",
		warped.WithConfig(warped.PaperConfig()),
		warped.WithFaults(fault.NewInjector(mkFault()), nil))
	if err != nil {
		fmt.Printf("\nunprotected run: kernel crashed with no warning of the root cause: %v\n", err)
	} else {
		fmt.Printf("\nunprotected run: %d corruptions produced, %d detected — every one a silent data corruption\n",
			unprot.FaultsActivated, unprot.FaultsDetected)
	}
	fmt.Println("\n(The detection granularity is a single SP: the scheduler could now")
	fmt.Println(" re-route around lane 5 of SM 0 instead of disabling the whole SM.)")
}
