// Lane diagnosis: the payoff of SP-granularity detection (paper §3.4).
// A permanently faulty SP lane is planted; Warped-DMR's comparators
// stream mismatch events into a diagnoser that identifies the exact
// (SM, lane) — so the scheduler could re-route around one SP instead of
// disabling the whole SM, as coarser SM- or chip-level DMR would force.
package main

import (
	"context"
	"fmt"

	"warped"
	"warped/internal/fault"
	"warped/internal/isa"
)

func main() {
	planted := &warped.Fault{
		Kind: fault.StuckAt, SM: 4, Lane: 13, Unit: isa.UnitSP, Bit: 2, StuckVal: 1,
	}
	fmt.Printf("planted fault:   %s\n\n", planted)

	d := warped.NewDiagnoser()
	// Raise the exception after 50 confirmed mismatches — plenty for the
	// diagnoser, long before a corrupted loop counter could hang the run.
	res, err := (&warped.Runner{}).Run(context.Background(), "Libor",
		warped.WithConfig(warped.WarpedDMRConfig()),
		warped.WithLaunchOpts(warped.LaunchOpts{
			Fault:           fault.NewInjector(planted),
			OnError:         d.Observe,
			StopAfterErrors: 50,
		}))
	switch {
	case err != nil:
		fmt.Printf("exception raised: %v\n", err)
	default:
		fmt.Printf("run completed:   %d values corrupted, %d mismatches flagged\n",
			res.FaultsActivated, res.FaultsDetected)
	}

	fmt.Println(d.Report())
	sm, lane, confident := d.Suspect()
	switch {
	case !confident:
		fmt.Println("verdict:         not enough evidence yet — run more work")
	case sm == planted.SM && lane == planted.Lane:
		fmt.Printf("verdict:         CORRECT — SM %d lane %d can be re-routed; the other %d SPs keep working\n",
			sm, lane, 31)
	default:
		fmt.Printf("verdict:         suspected SM %d lane %d (planted: SM %d lane %d)\n",
			sm, lane, planted.SM, planted.Lane)
	}

	fmt.Println("\nWith SM-level DMR the only remedy would be disabling all 32 SPs of")
	fmt.Println("the SM; with chip-level DMR, the whole GPU.")
}
