// Baseline comparison: evaluate one workload under every error
// detection approach of the paper's Fig. 10 — the software schemes
// (R-Naive, R-Thread), plain temporal DMR, and Warped-DMR — and print
// the end-to-end time decomposition (kernel + PCIe transfers).
package main

import (
	"fmt"
	"log"
	"os"

	"warped/internal/arch"
	"warped/internal/baselines"
	"warped/internal/kernels"
	"warped/internal/xfer"
)

func main() {
	benchName := "Laplace"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	b, err := kernels.ByName(benchName)
	if err != nil {
		log.Fatal(err)
	}

	results, err := baselines.EvaluateAll(b, arch.PaperConfig(), xfer.PCIe2x16())
	if err != nil {
		log.Fatal(err)
	}

	orig := results[0].TotalS()
	fmt.Printf("%s end-to-end (kernel + PCIe transfer)\n\n", benchName)
	fmt.Printf("%-11s  %10s  %12s  %9s  %10s\n",
		"approach", "kernel ms", "transfer ms", "total ms", "normalized")
	for _, r := range results {
		fmt.Printf("%-11s  %10.3f  %12.3f  %9.3f  %9.2fx\n",
			r.Approach, r.KernelS*1e3, r.TransferS*1e3, r.TotalS()*1e3, r.TotalS()/orig)
	}
	fmt.Println("\nR-Naive pays double kernels and double transfers; R-Thread hides")
	fmt.Println("redundant blocks only on idle SMs and copies the output back twice;")
	fmt.Println("DMTR steals issue slots for every replay; Warped-DMR replays on")
	fmt.Println("lanes and cycles that would otherwise idle.")
}
