// Package warped is the public API of the Warped-DMR reproduction: a
// cycle-level SIMT GPU simulator with the paper's opportunistic
// dual-modular-redundancy error detection (MICRO-45, 2012) layered on
// its issue stage, the 11 workloads of the paper's Table 4, the
// compared software/temporal baselines, and harnesses that regenerate
// every figure of the paper's evaluation.
//
// Quick start:
//
//	r := &warped.Runner{}
//	res, err := r.Run(ctx, "MatrixMul")
//	fmt.Printf("coverage %.1f%%, %d cycles\n", 100*res.Coverage(), res.Cycles)
//
// Runner is the context-aware entry point: functional options select
// the configuration, fault injection, retry policy, tracing, and
// metrics, and RunMany fans independent workloads out across a worker
// pool. The RunBenchmark* helpers are deprecated wrappers over it.
//
// Operational telemetry is opt-in and never perturbs the deterministic
// simulation output: attach a Metrics registry (WithMetrics or
// Runner.Metrics), stream instruction traces (WithTrace with the CSV,
// JSONL or Chrome writers), or serve pprof/expvar with MetricsHandler.
// docs/OBSERVABILITY.md documents the full metric contract.
//
// Custom kernels are written in a PTX-like assembly (see package
// internal/asm for the syntax) and launched on a GPU instance:
//
//	prog, _ := warped.Assemble(src)
//	gpu, _ := warped.NewGPU(cfg)
//	st, _ := gpu.Launch(&warped.Kernel{Prog: prog, GridX: 4, GridY: 1,
//	    BlockX: 128, BlockY: 1, Params: warped.NewParams(ptr)}, warped.LaunchOpts{})
package warped

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"warped/internal/arch"
	"warped/internal/asm"
	"warped/internal/baselines"
	"warped/internal/core"
	"warped/internal/experiments"
	"warped/internal/fault"
	"warped/internal/isa"
	"warped/internal/kernels"
	"warped/internal/mem"
	"warped/internal/metrics"
	"warped/internal/power"
	"warped/internal/runner"
	"warped/internal/sim"
	"warped/internal/stats"
	"warped/internal/trace"
	"warped/internal/verify"
	"warped/internal/xfer"
)

// Re-exported configuration types and constructors.
type (
	// Config is the simulated machine + Warped-DMR configuration.
	Config = arch.Config
	// MappingPolicy selects the thread-to-lane mapping.
	MappingPolicy = arch.MappingPolicy
	// DMRMode selects which DMR mechanisms are active.
	DMRMode = arch.DMRMode
	// Policy selects which eligible instructions the DMR engine
	// verifies (selective protection; see docs/POLICIES.md).
	Policy = arch.Policy
	// PolicyKind is the selective-protection policy family.
	PolicyKind = arch.PolicyKind
)

// Mapping policies and DMR modes.
const (
	MapLinear    = arch.MapLinear
	MapClusterRR = arch.MapClusterRR

	DMROff         = arch.DMROff
	DMRIntra       = arch.DMRIntra
	DMRInter       = arch.DMRInter
	DMRFull        = arch.DMRFull
	DMRTemporalAll = arch.DMRTemporalAll

	PolicyFull       = arch.PolicyFull
	PolicyOff        = arch.PolicyOff
	PolicyPerKernel  = arch.PolicyPerKernel
	PolicyWarpSample = arch.PolicyWarpSample
	PolicyActiveMask = arch.PolicyActiveMask
	PolicyPCRange    = arch.PolicyPCRange
	PolicyPCSet      = arch.PolicyPCSet
)

// ParsePolicy parses the protection-policy spelling the CLIs and the
// warpd job spec use (full, off, kernel:NAME[,..], warpsample:1/N,
// activemask:MIN, pcrange:LO-HI). See docs/POLICIES.md.
func ParsePolicy(s string) (Policy, error) { return arch.ParsePolicy(s) }

// PaperConfig returns the baseline machine of the paper's Table 3
// (30 SMs, 32-wide SIMT, 4-lane clusters) with DMR disabled.
func PaperConfig() Config { return arch.PaperConfig() }

// WarpedDMRConfig returns the paper's recommended configuration: full
// Warped-DMR with a 10-entry ReplayQ and round-robin cluster mapping.
func WarpedDMRConfig() Config { return arch.WarpedDMRConfig() }

// Simulator types.
type (
	// GPU is a simulated chip; launch kernels on it.
	GPU = sim.GPU
	// Kernel is one launchable grid.
	Kernel = sim.Kernel
	// LaunchOpts are per-launch options (fault hooks, RAW tracking).
	LaunchOpts = sim.LaunchOpts
	// Stats is the measurement set produced by a run.
	Stats = stats.Stats
	// Program is an assembled kernel.
	Program = isa.Program
	// ErrorEvent is a detected original/redundant mismatch.
	ErrorEvent = core.ErrorEvent
	// Fault is an injectable hardware defect.
	Fault = fault.Fault
	// Injector applies faults during simulation.
	Injector = fault.Injector
	// Benchmark is one of the paper's Table 4 workloads.
	Benchmark = kernels.Benchmark
	// PowerParams are the analytical power-model constants.
	PowerParams = power.Params
	// PowerReport is a power/energy estimate for a run.
	PowerReport = power.Report
	// TransferModel is the PCIe transfer-time model.
	TransferModel = xfer.Model
	// Approach is one of the Fig. 10 error-detection schemes.
	Approach = baselines.Approach
	// Diagnoser attributes detected mismatches to a physical lane
	// (the paper's SP-granularity isolation, §3.4).
	Diagnoser = core.Diagnoser
	// TraceEvent is one issued warp instruction (LaunchOpts.Trace).
	TraceEvent = trace.Event
	// TraceSink consumes trace events.
	TraceSink = trace.Sink
	// TraceRing buffers the last N trace events.
	TraceRing = trace.Ring
)

// NewTraceRing builds a ring buffer trace sink holding n events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// Observability types, re-exported from internal/metrics and
// internal/trace. See docs/OBSERVABILITY.md for the metric contract.
type (
	// Metrics is a low-overhead counter/gauge/histogram registry. Attach
	// one to a run with WithMetrics (or Runner.Metrics) and read it back
	// with Snapshot. Safe for concurrent use; a nil *Metrics is valid
	// and costs one branch per instrument bump.
	Metrics = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's values,
	// renderable as text (String) or JSON Lines (WriteJSONL).
	MetricsSnapshot = metrics.Snapshot
	// ChromeTraceWriter streams trace events in the Chrome trace-event
	// JSON format for chrome://tracing / ui.perfetto.dev. Close it.
	ChromeTraceWriter = trace.ChromeWriter
	// JSONLTraceWriter streams trace events as JSON Lines.
	JSONLTraceWriter = trace.JSONLWriter
	// CSVTraceWriter streams trace events as CSV rows.
	CSVTraceWriter = trace.CSVWriter
)

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return metrics.New() }

// NewChromeTraceWriter builds a Chrome trace-event sink writing to w.
// Call Close after the run to terminate the JSON array.
func NewChromeTraceWriter(w io.Writer) *ChromeTraceWriter { return trace.NewChromeWriter(w) }

// NewJSONLTraceWriter builds a JSON Lines trace sink writing to w.
func NewJSONLTraceWriter(w io.Writer) *JSONLTraceWriter { return trace.NewJSONLWriter(w) }

// NewCSVTraceWriter builds a CSV trace sink writing to w.
func NewCSVTraceWriter(w io.Writer) *CSVTraceWriter { return trace.NewCSVWriter(w) }

// MetricsHandler returns an http.Handler exposing reg as /debug/metrics
// (JSONL snapshot) alongside /debug/pprof/* and /debug/vars — the
// operational surface the CLIs mount behind their -pprof flag.
func MetricsHandler(reg *Metrics) http.Handler { return metrics.Handler(reg) }

// NewDiagnoser builds a fault-lane diagnoser; feed it to
// RunBenchmarkWithFaults as the error callback via (*Diagnoser).Observe.
func NewDiagnoser() *Diagnoser { return core.NewDiagnoser() }

// NewGPU builds a simulated GPU with the default 64 MB global memory.
func NewGPU(cfg Config) (*GPU, error) { return sim.New(cfg, 0) }

// NewGPUWithMemory builds a simulated GPU with a custom memory size.
func NewGPUWithMemory(cfg Config, memBytes int) (*GPU, error) { return sim.New(cfg, memBytes) }

// Assemble compiles PTX-like assembly source into a kernel program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// AssembleNamed is Assemble with a caller-supplied source name (a file
// path, a job ID, ...) prefixed to every assembly diagnostic, so an
// error can be traced to the artifact that carried the bad kernel.
func AssembleNamed(name, src string) (*Program, error) { return asm.AssembleNamed(name, src) }

// Static verification (lint) types, re-exported from internal/verify.
type (
	// Finding is one static-verifier diagnostic.
	Finding = verify.Finding
	// Findings is an ordered list of verifier diagnostics.
	Findings = verify.Findings
	// VerifyOptions tunes the static verifier.
	VerifyOptions = verify.Options
	// VerifyError wraps the findings that failed AssembleVerified.
	VerifyError = asm.VerifyError
)

// AssembleVerified compiles assembly source and then runs the static
// verifier over the program, rejecting kernels with error-severity
// findings (use-before-def, divergent barriers, broken reconvergence,
// misaligned accesses, ...). The program is returned even on
// verification failure so callers can inspect it.
func AssembleVerified(src string) (*Program, error) { return asm.AssembleVerified(src) }

// AssembleVerifiedNamed is AssembleVerified with a caller-supplied
// source name prefixed to every assembly and verification diagnostic.
func AssembleVerifiedNamed(name, src string) (*Program, error) {
	return asm.AssembleVerifiedNamed(name, src)
}

// Verify runs the static kernel verifier over an assembled program and
// returns every finding, ordered by source line.
func Verify(p *Program) Findings { return verify.Check(p) }

// VerifyWith runs the static verifier with explicit options.
func VerifyWith(p *Program, opt VerifyOptions) Findings { return verify.CheckWith(p, opt) }

// Fault-vulnerability analysis types, re-exported from internal/verify.
// See docs/STATIC_ANALYSIS.md, "The vulnerability domain".
type (
	// VulnReport classifies every PC of a kernel as ACE, unACE or
	// unknown under the execution-unit fault model.
	VulnReport = verify.VulnReport
	// PCVuln is one instruction's vulnerability classification.
	PCVuln = verify.PCVuln
	// VulnClass is the ACE/unACE/unknown classification.
	VulnClass = verify.VulnClass
)

// Vulnerability classes.
const (
	VulnUnknown = verify.VulnUnknown
	VulnACE     = verify.VulnACE
	VulnUnACE   = verify.VulnUnACE
)

// AnalyzeVulnerability runs the static fault-vulnerability (ACE)
// analysis over an assembled kernel: a backward liveness dataflow with
// masking-aware transfers that proves, per instruction, whether a fault
// in its computed result can ever reach architecturally visible state.
// Instructions proven unACE are safe to exclude from DMR protection;
// feed the report's UnACEPCs to SynthesizePolicy for that.
func AnalyzeVulnerability(p *Program) (*VulnReport, error) { return verify.AnalyzeVuln(p) }

// SynthesizePolicy converts a kernel's statically-unACE PC list into
// the cheapest protection policy that still verifies every ACE
// instruction (see docs/POLICIES.md, "Synthesized policies"). n is the
// kernel's instruction count.
func SynthesizePolicy(kernel string, n int, unACE []int) Policy {
	return arch.SynthesizePolicy(kernel, n, unACE)
}

// NewParams builds a kernel parameter block from 32-bit words.
func NewParams(words ...uint32) *mem.Params { return mem.NewParams(words...) }

// Benchmarks returns the paper's 11 workloads in Figure-1 order.
func Benchmarks() []*Benchmark { return kernels.All() }

// ExtraBenchmarks returns the non-paper reference workloads
// (reduction, transpose, histogram). They run like Table 4 workloads
// but are excluded from the paper's experiments.
func ExtraBenchmarks() []*Benchmark { return kernels.Extras() }

// BenchmarkNames returns the workload names in Figure-1 order.
func BenchmarkNames() []string { return kernels.Names() }

// findBenchmark resolves a name against the paper suite, then extras.
func findBenchmark(name string) (*Benchmark, error) {
	if b, err := kernels.ByName(name); err == nil {
		return b, nil
	}
	return kernels.ExtraByName(name)
}

// Result is the outcome of running one benchmark.
type Result struct {
	*Stats
	Benchmark string

	// Attempts is the number of workload executions behind this result:
	// 1 unless WithRetry re-ran the workload after a detection.
	Attempts int
	// Recovered reports that at least one attempt was discarded after a
	// comparator detection (or crash) and a later attempt ran clean.
	Recovered bool
	// Detections counts comparator mismatches across all attempts.
	Detections int
}

// Runner executes Table 4 workloads through a single context-aware
// entry point. The zero value is ready to use; Parallel and Progress
// only affect RunMany.
type Runner struct {
	// Parallel is the RunMany worker-pool size; <= 0 means GOMAXPROCS.
	Parallel int
	// Progress, when non-nil, is called after each RunMany workload
	// completes with (done, total) counts.
	Progress func(done, total int)
	// Metrics, when non-nil, receives operational telemetry from every
	// Run and RunMany call: simulator/DMR counters of each launch, the
	// run.latency_ms histogram, and (for RunMany) worker-pool telemetry
	// from internal/runner. A per-call WithMetrics overrides it. See
	// docs/OBSERVABILITY.md for the metric contract.
	Metrics *Metrics
}

// runSpec is the resolved option set of one Run call.
type runSpec struct {
	cfg      Config
	opts     LaunchOpts
	attempts int
	validate *bool // nil: validate only when no fault injector is set
}

// RunOption configures one Runner.Run invocation.
type RunOption func(*runSpec)

// WithConfig selects the simulated machine + DMR configuration. The
// default is WarpedDMRConfig(), the paper's recommended machine.
func WithConfig(cfg Config) RunOption { return func(s *runSpec) { s.cfg = cfg } }

// WithPolicy selects the selective-protection policy for the run
// without replacing the rest of the configuration (compose it with
// WithConfig in either order; the last write to the policy wins). The
// zero Policy is PolicyFull, the paper's always-on protection. See
// docs/POLICIES.md for the policy contract.
func WithPolicy(p Policy) RunOption { return func(s *runSpec) { s.cfg.Policy = p } }

// WithFaults injects faults during the run; each detected mismatch is
// reported through onError (which may be nil). Fault-injected runs skip
// output validation by default (corrupted outputs are the scenario
// under study); force it back on with WithValidation(true). The
// injector records activations, so share one injector across concurrent
// runs only if you do not read its counters until all runs finish —
// prefer one injector per run.
func WithFaults(inj *Injector, onError func(ErrorEvent)) RunOption {
	return func(s *runSpec) { s.opts.Fault = inj; s.opts.OnError = onError }
}

// WithRetry re-executes the whole workload from its inputs — the
// paper's §3.1 handling sketch — when a DMR comparator flags a mismatch
// or the corrupted run crashes, up to maxAttempts times. Transient
// faults vanish on the retry (Result.Recovered); persistent faults
// exhaust the attempts and Run returns an error.
func WithRetry(maxAttempts int) RunOption {
	return func(s *runSpec) { s.attempts = maxAttempts }
}

// WithTrace streams one event per issued warp instruction to sink.
// When the same sink is shared across RunMany workloads it must be safe
// for concurrent use.
func WithTrace(sink TraceSink) RunOption { return func(s *runSpec) { s.opts.Trace = sink } }

// WithStopOnError aborts the run at the first detected mismatch — the
// paper's "stop and raise an exception" permanent-fault response.
func WithStopOnError() RunOption { return func(s *runSpec) { s.opts.StopOnError = true } }

// WithLaunchOpts replaces the whole per-launch option set (fault hooks,
// error thresholds, watchdog, tracing) for full control. It composes
// poorly with the targeted options above — apply it first if you mix.
func WithLaunchOpts(opts LaunchOpts) RunOption { return func(s *runSpec) { s.opts = opts } }

// WithValidation forces output validation against the host reference on
// or off, overriding the default (validate only fault-free runs).
func WithValidation(on bool) RunOption { return func(s *runSpec) { s.validate = &on } }

// WithMetrics attaches a metrics registry to the run: every launch of
// the workload contributes its simulator and DMR counters, and the
// whole Run is observed into the run.latency_ms histogram. Read the
// results with m.Snapshot() after Run returns. The registry accumulates
// across runs (and is safe to share between concurrent ones); use a
// fresh registry per run for per-run numbers. Attaching a registry
// never changes the simulation output — stats stay byte-identical.
func WithMetrics(m *Metrics) RunOption { return func(s *runSpec) { s.opts.Metrics = m } }

// Run executes one named Table 4 workload under ctx. Cancellation is
// checked every few thousand simulated cycles, so even a hung kernel
// returns promptly with a ctx.Err()-wrapped error.
func (r *Runner) Run(ctx context.Context, name string, options ...RunOption) (*Result, error) {
	spec := &runSpec{cfg: WarpedDMRConfig(), attempts: 1}
	for _, o := range options {
		o(spec)
	}
	if spec.attempts < 1 {
		spec.attempts = 1
	}
	if spec.opts.Metrics == nil {
		spec.opts.Metrics = r.Metrics
	}
	if reg := spec.opts.Metrics; reg != nil {
		start := time.Now()
		defer func() {
			reg.Histogram("run.latency_ms", metrics.LatencyMSBounds).
				Observe(time.Since(start).Milliseconds())
		}()
	}
	b, err := findBenchmark(name)
	if err != nil {
		return nil, err
	}
	out := &Result{Benchmark: name}
	for attempt := 1; attempt <= spec.attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("warped: %s: %w", name, err)
		}
		out.Attempts = attempt
		st, detections, err := runOnce(ctx, b, spec)
		out.Detections += detections
		if err == nil && st.FaultsDetected == 0 {
			out.Stats = st
			out.Recovered = attempt > 1
			return out, nil
		}
		if err != nil && ctx.Err() != nil {
			return nil, err // cancelled mid-attempt: don't retry
		}
		if spec.attempts == 1 {
			if err != nil {
				return nil, err
			}
			// Mismatches were detected but the run completed (no
			// StopOnError, no retry budget): report them in the result.
			out.Stats = st
			return out, nil
		}
		// Detected (or crashed) with retries left: discard the attempt.
	}
	return nil, fmt.Errorf("warped: %s still failing after %d attempts: fault appears permanent", name, out.Attempts)
}

// runOnce executes every launch step of one workload attempt.
func runOnce(ctx context.Context, b *Benchmark, spec *runSpec) (*Stats, int, error) {
	g, err := sim.New(spec.cfg, b.GPUMemBytes())
	if err != nil {
		return nil, 0, err
	}
	run, err := b.Build(g)
	if err != nil {
		return nil, 0, err
	}
	detections := 0
	opts := spec.opts
	userOnError := opts.OnError
	opts.OnError = func(ev ErrorEvent) {
		detections++
		if userOnError != nil {
			userOnError(ev)
		}
	}
	total := &stats.Stats{}
	for i, step := range run.Steps {
		st, err := g.LaunchContext(ctx, step.Kernel, opts)
		if err != nil {
			return nil, detections, fmt.Errorf("%s: launch %d: %w", b.Name, i, err)
		}
		total.MergeSerial(st)
		if step.Host != nil {
			if err := step.Host(g); err != nil {
				return nil, detections, err
			}
		}
	}
	validate := spec.opts.Fault == nil
	if spec.validate != nil {
		validate = *spec.validate
	}
	if validate && run.Check != nil {
		if err := run.Check(g); err != nil {
			return nil, detections, fmt.Errorf("%s: validation: %w", b.Name, err)
		}
	}
	return total, detections, nil
}

// RunMany executes the named workloads concurrently on a worker pool of
// r.Parallel goroutines and returns their results in input order (never
// completion order). A panicking run becomes that workload's error; the
// first failure cancels the remaining workloads.
func (r *Runner) RunMany(ctx context.Context, names []string, options ...RunOption) ([]*Result, error) {
	return runner.Map(ctx, runner.Options{Workers: r.Parallel, OnProgress: r.Progress, Metrics: r.Metrics},
		len(names), func(ctx context.Context, i int) (*Result, error) {
			return r.Run(ctx, names[i], options...)
		})
}

// RunBenchmark executes one named Table 4 workload (including output
// validation against its host reference) under cfg.
//
// Deprecated: use Runner.Run with WithConfig.
func RunBenchmark(name string, cfg Config) (*Result, error) {
	return (&Runner{}).Run(context.Background(), name, WithConfig(cfg))
}

// RunBenchmarkWithFaults executes a workload with fault injection; each
// detected mismatch is reported through onError (which may be nil).
//
// Deprecated: use Runner.Run with WithConfig and WithFaults.
func RunBenchmarkWithFaults(name string, cfg Config, inj *Injector, onError func(ErrorEvent)) (*Result, error) {
	return (&Runner{}).Run(context.Background(), name,
		WithConfig(cfg), WithFaults(inj, onError))
}

// RunBenchmarkWithOpts executes a workload with full control over the
// launch options (fault hooks, error thresholds, watchdog). It never
// validates outputs, matching its historical behaviour.
//
// Deprecated: use Runner.Run with WithConfig and WithLaunchOpts.
func RunBenchmarkWithOpts(name string, cfg Config, opts LaunchOpts) (*Result, error) {
	return (&Runner{}).Run(context.Background(), name,
		WithConfig(cfg), WithLaunchOpts(opts), WithValidation(false))
}

// EstimatePower applies the analytical power model to a finished run.
func EstimatePower(cfg Config, st *Stats) PowerReport {
	return power.Estimate(cfg, power.DefaultParams(), st)
}

// Experiment results, re-exported for programmatic use; each has a
// Table() renderer. See cmd/experiments for the CLI that prints them.
type (
	// Engine runs the figure harnesses on a worker pool; its Workers
	// field plays the same role as Runner.Parallel. The zero value runs
	// with GOMAXPROCS workers.
	Engine = experiments.Engine

	Fig1Result      = experiments.Fig1Result
	Fig5Result      = experiments.Fig5Result
	Fig8aResult     = experiments.Fig8aResult
	Fig8bResult     = experiments.Fig8bResult
	Fig9aResult     = experiments.Fig9aResult
	Fig9bResult     = experiments.Fig9bResult
	Fig10Result     = experiments.Fig10Result
	Fig11Result     = experiments.Fig11Result
	CampaignResult  = experiments.CampaignResult
	SamplingResult  = experiments.SamplingResult
	SchedulerResult = experiments.SchedulerResult

	// ParetoSpec configures a selective-protection policy sweep;
	// ParetoResult holds its coverage-vs-overhead points.
	ParetoSpec   = experiments.ParetoSpec
	ParetoPoint  = experiments.ParetoPoint
	ParetoResult = experiments.ParetoResult
)

// The Run* functions regenerate the paper's figures.
var (
	RunFig1             = experiments.RunFig1
	RunFig5             = experiments.RunFig5
	RunFig8a            = experiments.RunFig8a
	RunFig8b            = experiments.RunFig8b
	RunFig9a            = experiments.RunFig9a
	RunFig9b            = experiments.RunFig9b
	RunFig10            = experiments.RunFig10
	RunFig11            = experiments.RunFig11
	RunCampaign         = experiments.RunCampaign
	RunPareto           = experiments.RunPareto
	RunSampling         = experiments.RunSampling
	RunSchedulerStudy   = experiments.RunSchedulerStudy
	RunDetectionLatency = experiments.RunDetectionLatency
)

// RetryResult reports a detect-and-retry run (the paper's §3.1 handling
// sketch: re-schedule on transient errors, raise an exception when the
// fault persists).
type RetryResult struct {
	*Result
	Attempts   int  // total launches of the workload
	Recovered  bool // a clean re-run followed at least one detection
	GaveUp     bool // every attempt kept failing: treat as permanent
	Detections int  // comparator mismatches across failed attempts
}

// RunBenchmarkWithRetry runs a workload under cfg with StopOnError
// semantics and kernel-level re-execution: when a Warped-DMR comparator
// flags a mismatch (or the corrupted run crashes), the whole workload
// is re-executed from its inputs, up to maxAttempts times. Transient
// faults vanish on the retry and the workload completes validated;
// persistent faults exhaust the attempts, which is the signal to treat
// the fault as permanent and re-route (see Diagnoser).
//
// Deprecated: use Runner.Run with WithFaults, WithStopOnError and
// WithRetry; the returned Result carries Attempts, Recovered and
// Detections directly.
func RunBenchmarkWithRetry(name string, cfg Config, inj *Injector, maxAttempts int) (*RetryResult, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	detections := 0
	res, err := (&Runner{}).Run(context.Background(), name,
		WithConfig(cfg),
		WithFaults(inj, func(ErrorEvent) { detections++ }),
		WithStopOnError(),
		WithRetry(maxAttempts),
		WithValidation(false))
	if err != nil {
		return &RetryResult{Attempts: maxAttempts, GaveUp: true, Detections: detections}, err
	}
	return &RetryResult{
		Result:     res,
		Attempts:   res.Attempts,
		Recovered:  res.Recovered,
		Detections: detections,
	}, nil
}
