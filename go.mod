module warped

go 1.22
