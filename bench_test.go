package warped

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"warped/internal/arch"
	"warped/internal/baselines"
	"warped/internal/kernels"
	"warped/internal/sim"
	"warped/internal/xfer"
)

// One benchmark per paper table/figure: running `go test -bench=.`
// regenerates every evaluation result and reports it through -v output
// or the cmd/experiments CLI. b.N loops re-run the full measurement so
// the benchmarks also double as timing probes of the simulator itself.

func BenchmarkFig1Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r.Table().String())
		}
	}
}

func BenchmarkFig5InstructionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r.Table().String())
		}
	}
}

func BenchmarkFig8aTypeSwitchDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig8a()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r.Table().String())
		}
	}
}

func BenchmarkFig8bRAWDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig8b()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r.Table().String())
		}
	}
}

func BenchmarkFig9aCoverage(b *testing.B) {
	var warpInstrs int64
	for i := 0; i < b.N; i++ {
		r, err := RunFig9a()
		if err != nil {
			b.Fatal(err)
		}
		warpInstrs += r.WarpInstrs
		if i == 0 {
			a4, a8, ax := r.Averages()
			b.Logf("\n%s", r.Table().String())
			b.ReportMetric(100*a4, "%cov4c")
			b.ReportMetric(100*a8, "%cov8c")
			b.ReportMetric(100*ax, "%covCross")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(warpInstrs), "ns/warpinstr")
}

func BenchmarkFig9bReplayQOverhead(b *testing.B) {
	var warpInstrs int64
	for i := 0; i < b.N; i++ {
		r, err := RunFig9b()
		if err != nil {
			b.Fatal(err)
		}
		warpInstrs += r.WarpInstrs
		if i == 0 {
			avg := r.Averages()
			b.Logf("\n%s", r.Table().String())
			b.ReportMetric(avg[len(avg)-1], "x-overhead-q10")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(warpInstrs), "ns/warpinstr")
}

func BenchmarkFig10EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r.Table().String())
			norm := r.NormalizedTotals()
			b.ReportMetric(norm[4], "x-warped")
			b.ReportMetric(norm[1], "x-rnaive")
		}
	}
}

func BenchmarkFig11PowerEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunFig11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p, e := r.Averages()
			b.Logf("\n%s", r.Table().String())
			b.ReportMetric(p, "x-power")
			b.ReportMetric(e, "x-energy")
		}
	}
}

func BenchmarkFaultInjectionCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := RunCampaign("SHA", 5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("activated=%d detected=%d crashed=%d silent=%d",
				c.Activated, c.Detected, c.Crashed, c.Silent)
		}
	}
}

// BenchmarkCampaignParallelism measures the orchestration engine's
// wall-clock scaling on a fixed 16-run campaign: workers=1 is the
// serial baseline, higher counts show the worker-pool speedup (bounded
// by the host's core count — on a single-core box the times converge).
// The campaign output itself is identical at every worker count; see
// internal/experiments TestParallelMatchesSerial.
func BenchmarkCampaignParallelism(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := &Engine{Workers: workers}
			for i := 0; i < b.N; i++ {
				c, err := e.Campaign(context.Background(), "SHA", 16, 7)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && workers == 1 {
					b.Logf("activated=%d detected=%d crashed=%d silent=%d",
						c.Activated, c.Detected, c.Crashed, c.Silent)
				}
			}
		})
	}
}

// Per-workload simulator throughput benchmarks: how fast the simulator
// itself runs each kernel (useful when extending the substrate).
func BenchmarkSimulator(b *testing.B) {
	for _, name := range []string{"MatrixMul", "BFS", "SHA", "CUFFT"} {
		for _, cfg := range []struct {
			label string
			c     arch.Config
		}{
			{"base", arch.PaperConfig()},
			{"warped", arch.WarpedDMRConfig()},
		} {
			b.Run(name+"/"+cfg.label, func(b *testing.B) {
				bench, err := kernels.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				var cycles int64
				for i := 0; i < b.N; i++ {
					g, err := sim.New(cfg.c, 0)
					if err != nil {
						b.Fatal(err)
					}
					st, err := kernels.Execute(g, bench, sim.LaunchOpts{})
					if err != nil {
						b.Fatal(err)
					}
					cycles = st.Cycles
				}
				b.ReportMetric(float64(cycles), "simcycles")
			})
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out: lane
// shuffling, idle draining, and the mapping policy.
func BenchmarkAblation(b *testing.B) {
	mk := func(mut func(*arch.Config)) arch.Config {
		c := arch.WarpedDMRConfig()
		mut(&c)
		return c
	}
	cases := []struct {
		label string
		cfg   arch.Config
	}{
		{"full", mk(func(*arch.Config) {})},
		{"no-idle-drain", mk(func(c *arch.Config) { c.IdleDrain = false })},
		{"no-lane-shuffle", mk(func(c *arch.Config) { c.LaneShuffle = false })},
		{"linear-mapping", mk(func(c *arch.Config) { c.Mapping = arch.MapLinear })},
		{"cluster8", mk(func(c *arch.Config) { c.ClusterSize = 8 })},
	}
	for _, tc := range cases {
		b.Run(tc.label, func(b *testing.B) {
			bench, err := kernels.ByName("MatrixMul")
			if err != nil {
				b.Fatal(err)
			}
			var cov float64
			var cycles int64
			for i := 0; i < b.N; i++ {
				g, err := sim.New(tc.cfg, 0)
				if err != nil {
					b.Fatal(err)
				}
				st, err := kernels.Execute(g, bench, sim.LaunchOpts{})
				if err != nil {
					b.Fatal(err)
				}
				cov, cycles = st.Coverage(), st.Cycles
			}
			b.ReportMetric(100*cov, "%cov")
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkBaselines times the five Fig. 10 approaches on one workload.
func BenchmarkBaselines(b *testing.B) {
	bench, err := kernels.ByName("Laplace")
	if err != nil {
		b.Fatal(err)
	}
	pcie := xfer.PCIe2x16()
	for _, a := range baselines.Approaches {
		b.Run(a.String(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := baselines.Evaluate(a, bench, arch.PaperConfig(), pcie)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalS()
			}
			b.ReportMetric(total*1e3, "model-ms")
		})
	}
}
