package warped

import (
	"context"
	"math"
	"testing"

	"warped/internal/fault"
	"warped/internal/isa"
)

func TestPublicQuickstart(t *testing.T) {
	res, err := (&Runner{}).Run(context.Background(), "BitonicSort",
		WithConfig(WarpedDMRConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "BitonicSort" || res.Cycles <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if c := res.Coverage(); c <= 0 || c > 1 {
		t.Errorf("coverage %v out of range", c)
	}
}

func TestPublicBenchmarkRegistry(t *testing.T) {
	if len(Benchmarks()) != 11 || len(BenchmarkNames()) != 11 {
		t.Error("expected the paper's 11 workloads")
	}
	if _, err := (&Runner{}).Run(context.Background(), "NotABenchmark",
		WithConfig(PaperConfig())); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicAssembleAndLaunch(t *testing.T) {
	prog, err := Assemble(`
.kernel square
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x
	ld.param r3, [0]
	imul r4, r2, r2
	shl  r5, r2, 2
	iadd r5, r3, r5
	st.global [r5], r4
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := NewGPU(WarpedDMRConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	out := gpu.Mem.MustAlloc(4 * n)
	st, err := gpu.Launch(&Kernel{
		Prog: prog, GridX: 2, GridY: 1, BlockX: 64, BlockY: 1,
		Params: NewParams(out),
	}, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := gpu.Mem.ReadWords(out, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint32(i*i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if st.Coverage() < 0.99 {
		t.Errorf("full-warp kernel coverage %.3f, want ~1.0", st.Coverage())
	}
}

func TestPublicFaultInjection(t *testing.T) {
	inj := fault.NewInjector(&Fault{
		Kind: fault.StuckAt, SM: 0, Lane: 1, Unit: isa.UnitSP, Bit: 0, StuckVal: 1,
	})
	detections := 0
	res, err := (&Runner{}).Run(context.Background(), "SHA",
		WithConfig(WarpedDMRConfig()),
		WithFaults(inj, func(ErrorEvent) { detections++ }))
	// The fault may crash the kernel (DUE) or be detected; either way
	// it must not pass silently once activated.
	if err == nil {
		if res.FaultsActivated > 0 && res.FaultsDetected == 0 {
			t.Error("activated fault went undetected")
		}
	}
	_ = detections
}

func TestPublicPowerEstimate(t *testing.T) {
	cfg := PaperConfig()
	res, err := (&Runner{}).Run(context.Background(), "Laplace", WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rep := EstimatePower(cfg, res.Stats)
	if rep.TotalW <= 0 || rep.EnergyJ <= 0 {
		t.Errorf("bad power report: %+v", rep)
	}
	if math.Abs(rep.EnergyJ-rep.TotalW*rep.TimeS) > 1e-12 {
		t.Error("E != P*t")
	}
}

func TestRunnerRetryTransient(t *testing.T) {
	// A one-shot transient: the first attempt detects it, the retry is
	// clean and validates.
	inj := fault.NewInjector(&Fault{
		Kind: fault.Transient, SM: 0, Lane: 2, Unit: isa.UnitSP, Bit: 3, Cycle: 5,
	})
	r, err := (&Runner{}).Run(context.Background(), "BitonicSort",
		WithConfig(WarpedDMRConfig()),
		WithFaults(inj, nil),
		WithStopOnError(),
		WithRetry(3),
		WithValidation(false))
	if err != nil {
		t.Fatalf("transient should recover: %v", err)
	}
	if !r.Recovered || r.Attempts != 2 {
		t.Errorf("expected recovery on attempt 2, got %+v", r)
	}
	if r.Detections == 0 {
		t.Error("the first attempt should have detected the corruption")
	}
}

func TestRunnerRetryPermanent(t *testing.T) {
	// A stuck-at fault persists across retries: Run exhausts the
	// attempt budget and reports the fault as permanent.
	inj := fault.NewInjector(&Fault{
		Kind: fault.StuckAt, SM: 0, Lane: 2, Unit: isa.UnitSP, Bit: 0, StuckVal: 1,
	})
	_, err := (&Runner{}).Run(context.Background(), "BitonicSort",
		WithConfig(WarpedDMRConfig()),
		WithFaults(inj, nil),
		WithStopOnError(),
		WithRetry(3),
		WithValidation(false))
	if err == nil {
		t.Fatal("permanent fault should exhaust retries")
	}
}
